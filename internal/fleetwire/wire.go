package fleetwire

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Wire error codes. A worker answers every failure with a typed
// wireError body — never a panic, never a bare 500 — so the
// coordinator can tell "this worker cannot serve this request" (don't
// retry, fail over) from transport trouble (retry, then fail over).
const (
	// CodeBadRequest: the request body was not a valid execute request.
	CodeBadRequest = "bad_request"
	// CodeUnknownCapability: Cap did not resolve against the worker's
	// registry replica.
	CodeUnknownCapability = "unknown_capability"
	// CodeBadInput: an input value failed to decode.
	CodeBadInput = "bad_input"
	// CodeExecutionFailed: the capability ran and returned an error
	// (or panicked; panics are contained by the worker).
	CodeExecutionFailed = "execution_failed"
	// CodeUnencodableOutput: the capability produced a value the codec
	// cannot put on the wire.
	CodeUnencodableOutput = "unencodable_output"
	// CodeHandshakeMismatch: registration was refused because the
	// worker's shard fingerprint or registry generation disagrees with
	// the coordinator's.
	CodeHandshakeMismatch = "handshake_mismatch"
)

// wireError is the typed error body of every non-2xx worker response.
type wireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *wireError) Error() string {
	return fmt.Sprintf("fleetwire: %s: %s", e.Code, e.Message)
}

// httpStatus maps an error code to its transport status.
func httpStatus(code string) int {
	switch code {
	case CodeBadRequest, CodeBadInput:
		return http.StatusBadRequest
	case CodeUnknownCapability:
		return http.StatusNotFound
	case CodeHandshakeMismatch:
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// executeRequest is the wire form of a fleet.Request: exactly the
// fields the transport contract says cross a process boundary (see
// fleet.Request's serialization-boundary doc). Capability and Env
// deliberately have no wire representation.
type executeRequest struct {
	Cap string               `json:"cap"`
	Key string               `json:"key,omitempty"`
	In  map[string]wireValue `json:"in"`
}

// executeResponse is the wire form of a fleet.Response.
type executeResponse struct {
	Out      map[string]wireValue `json:"out"`
	CacheHit bool                 `json:"cache_hit,omitempty"`
}

// handshake identifies one side's shard and catalog version. The
// coordinator POSTs its expectation to /v1/register; the worker
// compares against its own and refuses with CodeHandshakeMismatch
// unless both fingerprints agree — shard contents must match by
// construction (same world derivation, same shard count and index)
// and both binaries must carry the same builtin catalog.
type handshake struct {
	Index              int    `json:"index"`
	Shards             int    `json:"shards"`
	ShardFingerprint   string `json:"shard_fingerprint"`
	RegistryGeneration uint64 `json:"registry_generation"`
}

func (h handshake) matches(other handshake) bool {
	return h.Index == other.Index &&
		h.Shards == other.Shards &&
		h.ShardFingerprint == other.ShardFingerprint &&
		h.RegistryGeneration == other.RegistryGeneration
}

func (h handshake) String() string {
	fp := h.ShardFingerprint
	if len(fp) > 12 {
		fp = fp[:12]
	}
	return fmt.Sprintf("shard %d/%d fp %s gen %d", h.Index, h.Shards, fp, h.RegistryGeneration)
}

// writeJSON writes one JSON body with a status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes a typed wire error.
func writeError(w http.ResponseWriter, code, format string, args ...any) {
	writeJSON(w, httpStatus(code), map[string]*wireError{
		"error": {Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

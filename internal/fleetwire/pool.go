// Package fleetwire puts a real wire under the fleet's Transport
// seam: an HTTP/JSON transport whose typed codec round-trips step
// input and output values between OS processes, so the same
// scatter-gather plans the in-process fleet runs (internal/fleet)
// execute against remote worker processes (cmd/arachnet-worker) —
// DIMES-style scale-out with reports byte-identical to in-process and
// inline execution.
//
// # Topology
//
// A coordinator builds its fleet as usual (fleet.New partitions the
// world, starts in-process workers) and wraps the transport with a
// Pool via fleet.Config.WrapTransport. The Pool maps shard i to the
// i-th remote address; shards beyond the address list stay on their
// in-process worker. Each remote is a cmd/arachnet-worker process
// that derived the same world from the same -world/-seed/-shards
// flags, so shard contents agree by construction — and the
// registration handshake (netsim.Partition.ShardFingerprint plus the
// builtin-catalog registry generation) proves it before any request
// is routed there.
//
// # Failure semantics
//
// Correctness never depends on a remote. Every Send falls back to the
// in-process worker — which owns the identical shard — when the
// remote is unregistered, rejected, unhealthy, or exhausts its
// retries; the fallback result is exactly what the remote would have
// produced, so a killed worker degrades an ask, never fails it.
// Typed worker refusals (unknown capability, undecodable input) fail
// over immediately without retrying; transport errors retry up to
// Config.Retries times under Config.RequestTimeout each. A background
// loop health-checks remotes every Config.HealthInterval, re-registers
// the unhealthy, and permanently rejects handshake mismatches. All of
// it is counted in fleet.WireStats, surfaced through Fleet.Stats,
// core.CacheStats.Fleet and /v1/stats.
package fleetwire

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arachnet/internal/core"
	"arachnet/internal/fleet"
	"arachnet/internal/netsim"
)

// NewFleet builds a fleet of len(addrs) workers whose transport
// routes each shard to the remote worker at the matching address,
// with in-process failover (see Pool). cfg.World is taken from world
// and cfg.RegistryGeneration defaults to the builtin catalog's — the
// one arachnet-worker serves.
func NewFleet(world *netsim.World, addrs []string, cfg Config) (*fleet.Fleet, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("fleetwire: no remote worker addresses")
	}
	cfg.World = world
	if cfg.RegistryGeneration == 0 {
		cfg.RegistryGeneration = core.BuiltinRegistry().Generation()
	}
	var poolErr error
	f, err := fleet.New(world, fleet.Config{
		Workers: len(addrs),
		WrapTransport: func(inner fleet.Transport) fleet.Transport {
			p, err := NewPool(inner, addrs, cfg)
			if err != nil {
				poolErr = err
				return inner
			}
			return p
		},
	})
	if err != nil {
		return nil, err
	}
	if poolErr != nil {
		f.Close()
		return nil, poolErr
	}
	return f, nil
}

// Config tunes a Pool.
type Config struct {
	// World is the coordinator's generated world; the Pool re-derives
	// the partition from it to compute per-shard handshake
	// fingerprints. Required.
	World *netsim.World
	// RegistryGeneration is the builtin-catalog generation the workers
	// must be serving (core.BuiltinRegistry().Generation() of the
	// coordinator's binary); a worker built from a different catalog
	// version is rejected at registration.
	RegistryGeneration uint64
	// RequestTimeout bounds each execute attempt (default 15s).
	RequestTimeout time.Duration
	// Retries is how many times a transiently-failed request is
	// re-sent before failing over (default 1).
	Retries int
	// HealthInterval paces the background health/re-registration loop
	// (default 2s; negative disables the loop).
	HealthInterval time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// Remote registration states.
const (
	remoteUnregistered = iota // never handshaken; health loop keeps trying
	remoteHealthy             // registered and answering
	remoteUnhealthy           // registered once, now failing; probed for recovery
	remoteRejected            // handshake mismatch; never used again
)

type remote struct {
	index int
	base  string // http://host:port

	mu    sync.Mutex
	state int
}

func (r *remote) getState() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

func (r *remote) setState(s int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == remoteRejected {
		return // rejection is permanent
	}
	r.state = s
}

// Pool is the coordinator side of the wire: a fleet.Transport that
// routes shard requests to registered remote workers and falls back
// to the wrapped in-process transport on any trouble.
type Pool struct {
	inner   fleet.Transport
	cfg     Config
	client  *http.Client
	remotes []*remote // remotes[i] serves shard i; nil entries stay local
	fps     []string  // per-shard handshake fingerprints

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	requests       atomic.Uint64
	retries        atomic.Uint64
	failovers      atomic.Uint64
	healthFailures atomic.Uint64
	bytesSent      atomic.Uint64
	bytesReceived  atomic.Uint64
}

// NewPool wraps inner with remote routing: addrs[i] (host:port or a
// full http URL) serves shard i. len(addrs) may be less than the
// worker count — uncovered shards stay in-process — but not more.
// Registration of every remote is attempted immediately; failures are
// left to the health loop, so a Pool over dead workers still
// constructs (and serves everything via inner).
func NewPool(inner fleet.Transport, addrs []string, cfg Config) (*Pool, error) {
	if cfg.World == nil {
		return nil, fmt.Errorf("fleetwire: pool config needs the coordinator's world")
	}
	n := inner.Workers()
	if len(addrs) > n {
		return nil, fmt.Errorf("fleetwire: %d remote addresses for %d shards", len(addrs), n)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 15 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 1
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	part, err := netsim.PartitionWorld(cfg.World, n)
	if err != nil {
		return nil, err
	}
	p := &Pool{
		inner:   inner,
		cfg:     cfg,
		client:  cfg.Client,
		remotes: make([]*remote, n),
		fps:     make([]string, n),
		done:    make(chan struct{}),
	}
	if p.client == nil {
		p.client = &http.Client{}
	}
	for i := range p.fps {
		fp, err := part.ShardFingerprint(i)
		if err != nil {
			return nil, err
		}
		p.fps[i] = fp
	}
	for i, addr := range addrs {
		base := addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		p.remotes[i] = &remote{index: i, base: strings.TrimRight(base, "/")}
	}
	// First registration pass, bounded per remote; workers that are
	// not up yet are picked up by the health loop.
	for _, r := range p.remotes {
		if r != nil {
			p.register(r)
		}
	}
	if cfg.HealthInterval > 0 {
		p.wg.Add(1)
		go p.healthLoop()
	}
	return p, nil
}

// handshakeFor builds the coordinator's expectation for shard i.
func (p *Pool) handshakeFor(i int) handshake {
	return handshake{
		Index:              i,
		Shards:             len(p.remotes),
		ShardFingerprint:   p.fps[i],
		RegistryGeneration: p.cfg.RegistryGeneration,
	}
}

// register performs the /v1/register handshake. A mismatch rejects
// the remote permanently; transport failure leaves it for the health
// loop; success marks it healthy.
func (p *Pool) register(r *remote) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.RequestTimeout)
	defer cancel()
	want := p.handshakeFor(r.index)
	body, err := json.Marshal(want)
	if err != nil {
		return
	}
	status, respBody, err := p.post(ctx, r.base+"/v1/register", body)
	if err != nil {
		p.healthFailures.Add(1)
		return
	}
	if status == httpStatus(CodeHandshakeMismatch) {
		r.mu.Lock()
		r.state = remoteRejected
		r.mu.Unlock()
		return
	}
	var got handshake
	if status != http.StatusOK || json.Unmarshal(respBody, &got) != nil || !want.matches(got) {
		// A worker that answers the endpoint but not the contract is
		// as unusable as a mismatch.
		r.mu.Lock()
		r.state = remoteRejected
		r.mu.Unlock()
		return
	}
	r.setState(remoteHealthy)
}

// healthLoop probes healthy remotes and re-registers unhealthy or
// never-registered ones until Close.
func (p *Pool) healthLoop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-tick.C:
		}
		for _, r := range p.remotes {
			if r == nil {
				continue
			}
			switch r.getState() {
			case remoteHealthy:
				if !p.healthy(r) {
					p.healthFailures.Add(1)
					r.setState(remoteUnhealthy)
				}
			case remoteUnhealthy, remoteUnregistered:
				p.register(r)
			}
		}
	}
}

// healthy probes GET /healthz.
func (p *Pool) healthy(r *remote) bool {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// post sends one JSON body and returns status and response body.
// Counts codec bytes both ways.
func (p *Pool) post(ctx context.Context, url string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	p.bytesSent.Add(uint64(len(body)))
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	p.bytesReceived.Add(uint64(len(respBody)))
	return resp.StatusCode, respBody, nil
}

// Send implements fleet.Transport: encode, route to the shard's
// remote with retry, and fail over to the in-process worker whenever
// the remote cannot answer. The fallback owns the identical shard, so
// the result is the same either way.
func (p *Pool) Send(ctx context.Context, worker int, req fleet.Request) (fleet.Response, error) {
	select {
	case <-p.done:
		return fleet.Response{}, fleet.ErrTransportClosed
	default:
	}
	var r *remote
	if worker >= 0 && worker < len(p.remotes) {
		r = p.remotes[worker]
	}
	if r == nil {
		// No remote configured for this shard: plain in-process
		// execution, not a failover.
		return p.inner.Send(ctx, worker, req)
	}
	if r.getState() != remoteHealthy {
		p.failovers.Add(1)
		return p.inner.Send(ctx, worker, req)
	}
	in, err := encodeMap(req.In)
	if err != nil {
		// Un-encodable inputs are a coordinator-side condition; the
		// in-process worker takes the request by reference.
		p.failovers.Add(1)
		return p.inner.Send(ctx, worker, req)
	}
	body, err := json.Marshal(executeRequest{Cap: req.Cap, Key: req.Key, In: in})
	if err != nil {
		p.failovers.Add(1)
		return p.inner.Send(ctx, worker, req)
	}

	attempts := p.cfg.Retries + 1
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			p.retries.Add(1)
		}
		resp, retryable, err := p.sendOnce(ctx, r, body)
		if err == nil {
			p.requests.Add(1)
			return resp, nil
		}
		if ctx.Err() != nil {
			// The ask itself is dying; don't mask that with a failover.
			return fleet.Response{}, ctx.Err()
		}
		if !retryable {
			break
		}
	}
	// Retries exhausted (or the worker refused): the remote is not
	// serving this shard right now. Mark it for the health loop and
	// degrade to the in-process worker.
	r.setState(remoteUnhealthy)
	p.failovers.Add(1)
	return p.inner.Send(ctx, worker, req)
}

// sendOnce performs one execute attempt. retryable reports whether
// the failure was transport-level (worth re-sending) as opposed to a
// typed refusal by a live worker.
func (p *Pool) sendOnce(ctx context.Context, r *remote, body []byte) (fleet.Response, bool, error) {
	actx, cancel := context.WithTimeout(ctx, p.cfg.RequestTimeout)
	defer cancel()
	status, respBody, err := p.post(actx, r.base+"/v1/execute", body)
	if err != nil {
		return fleet.Response{}, true, err
	}
	if status != http.StatusOK {
		var fail struct {
			Error *wireError `json:"error"`
		}
		if json.Unmarshal(respBody, &fail) == nil && fail.Error != nil {
			// A typed refusal: the worker is alive but cannot serve
			// this request; retrying the same request is pointless.
			return fleet.Response{}, false, fail.Error
		}
		return fleet.Response{}, true, fmt.Errorf("fleetwire: worker %d: HTTP %d", r.index, status)
	}
	var wr executeResponse
	if err := json.Unmarshal(respBody, &wr); err != nil {
		return fleet.Response{}, true, fmt.Errorf("fleetwire: worker %d: decode response: %w", r.index, err)
	}
	out, err := decodeMap(wr.Out)
	if err != nil {
		return fleet.Response{}, false, err
	}
	return fleet.Response{Out: out, CacheHit: wr.CacheHit}, false, nil
}

// Workers implements fleet.Transport.
func (p *Pool) Workers() int { return p.inner.Workers() }

// Close stops the health loop and closes the in-process transport.
func (p *Pool) Close() error {
	var err error
	p.closeOnce.Do(func() {
		close(p.done)
		p.wg.Wait()
		err = p.inner.Close()
	})
	return err
}

// WireStats implements fleet.WireStatser.
func (p *Pool) WireStats() fleet.WireStats {
	st := fleet.WireStats{
		Requests:       p.requests.Load(),
		Retries:        p.retries.Load(),
		Failovers:      p.failovers.Load(),
		HealthFailures: p.healthFailures.Load(),
		BytesSent:      p.bytesSent.Load(),
		BytesReceived:  p.bytesReceived.Load(),
	}
	for _, r := range p.remotes {
		if r == nil {
			continue
		}
		st.Remotes++
		switch r.getState() {
		case remoteHealthy:
			st.Registered++
		case remoteRejected:
			st.Rejected++
		}
	}
	return st
}

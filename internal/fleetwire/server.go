package fleetwire

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"arachnet/internal/core"
	"arachnet/internal/fleet"
	"arachnet/internal/netsim"
	"arachnet/internal/registry"
)

// Server is the worker side of the wire: one world shard behind three
// HTTP endpoints.
//
//	POST /v1/execute  — run one shard-local capability request
//	POST /v1/register — coordinator handshake (shard fingerprint +
//	                    registry generation must match)
//	GET  /healthz     — liveness
//	GET  /v1/stats    — worker counters (requests, shard inventory)
//
// The server derives its shard exactly the way the coordinator does —
// netsim.PartitionWorld over the same generated world with the same
// shard count — so shard contents agree by construction, and the
// handshake fingerprint proves it. Execution reuses fleet.Worker,
// including its per-shard LRU step cache keyed by the coordinator's
// step fingerprints.
type Server struct {
	env    *core.Environment
	reg    *registry.Registry
	worker *fleet.Worker
	hs     handshake
	mux    *http.ServeMux

	requests  atomic.Uint64
	registers atomic.Uint64
}

// NewServer builds a worker server owning shard index of shards over
// env's world, executing against reg (nil means the builtin catalog).
// cacheEntries bounds the worker's step cache (<= 0 disables it).
func NewServer(env *core.Environment, reg *registry.Registry, shards, index, cacheEntries int) (*Server, error) {
	if env == nil {
		return nil, fmt.Errorf("fleetwire: server needs an environment")
	}
	if reg == nil {
		reg = core.BuiltinRegistry()
	}
	part, err := netsim.PartitionWorld(env.World, shards)
	if err != nil {
		return nil, err
	}
	if index < 0 || index >= shards {
		return nil, fmt.Errorf("fleetwire: shard index %d out of range [0,%d)", index, shards)
	}
	fp, err := part.ShardFingerprint(index)
	if err != nil {
		return nil, err
	}
	s := &Server{
		env:    env,
		reg:    reg,
		worker: fleet.NewWorker(index, part.Shards[index], cacheEntries),
		hs: handshake{
			Index:              index,
			Shards:             shards,
			ShardFingerprint:   fp,
			RegistryGeneration: reg.Generation(),
		},
		mux: http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/execute", s.handleExecute)
	s.mux.HandleFunc("POST /v1/register", s.handleRegister)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s, nil
}

// Handshake describes the server's identity (for logs and tests).
func (s *Server) Handshake() string { return s.hs.String() }

// Worker exposes the underlying shard worker (stats, tests).
func (s *Server) Worker() *fleet.Worker { return s.worker }

// ServeHTTP makes Server an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Typed-error backstop: a handler bug must surface as a wire
	// error, not a dropped connection. Capability panics are already
	// contained inside fleet.Worker.Execute.
	defer func() {
		if rec := recover(); rec != nil {
			writeError(w, CodeExecutionFailed, "worker panicked: %v", rec)
		}
	}()
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req executeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, CodeBadRequest, "decode request: %v", err)
		return
	}
	if req.Cap == "" {
		writeError(w, CodeBadRequest, "request names no capability")
		return
	}
	// Worker-side validation: the capability must resolve here and the
	// inputs must decode — a request the worker cannot serve gets a
	// typed refusal the coordinator won't retry.
	capb, err := s.reg.Get(req.Cap)
	if err != nil {
		writeError(w, CodeUnknownCapability, "capability %q not in worker registry", req.Cap)
		return
	}
	in, err := decodeMap(req.In)
	if err != nil {
		writeError(w, CodeBadInput, "capability %q: %v", req.Cap, err)
		return
	}
	resp, err := s.worker.Execute(r.Context(), fleet.Request{
		Cap:        req.Cap,
		Capability: capb,
		In:         in,
		Env:        s.env,
		Key:        req.Key,
	})
	if err != nil {
		writeError(w, CodeExecutionFailed, "%v", err)
		return
	}
	out, err := encodeMap(resp.Out)
	if err != nil {
		writeError(w, CodeUnencodableOutput, "capability %q: %v", req.Cap, err)
		return
	}
	writeJSON(w, http.StatusOK, executeResponse{Out: out, CacheHit: resp.CacheHit})
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	s.registers.Add(1)
	var got handshake
	if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
		writeError(w, CodeBadRequest, "decode handshake: %v", err)
		return
	}
	if !s.hs.matches(got) {
		writeError(w, CodeHandshakeMismatch,
			"coordinator expects %s, worker is %s", got, s.hs)
		return
	}
	writeJSON(w, http.StatusOK, s.hs)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"handshake": s.hs,
		"requests":  s.requests.Load(),
		"registers": s.registers.Load(),
		"shard":     s.worker.Stats(),
	})
}

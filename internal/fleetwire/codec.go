package fleetwire

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"reflect"
	"sort"

	"arachnet/internal/bgp"
	"arachnet/internal/core"
	"arachnet/internal/nautilus"
	"arachnet/internal/netsim"
	"arachnet/internal/topo"
	"arachnet/internal/traceroute"
	"arachnet/internal/xaminer"
)

// The wire codec: step-input and step-output values are Go values of
// concrete catalog types (see internal/core's capability ports), and
// the in-process transport passes them by reference. Crossing a
// process boundary needs the exact type back on the far side — a bare
// json.Unmarshal into interface{} would yield map[string]interface{}
// soup — so every value travels as a tagged envelope:
//
//	{"type": "[]netsim.LinkID", "value": [12, 40, 77]}
//
// and both sides share a closed registry of tag ↔ concrete type
// decoders. Every type is chosen to round-trip exactly: all fields
// exported, times in UTC RFC3339-nano, netip values via MarshalText,
// integer-keyed maps via Go's JSON map-key encoding. The codec
// round-trip property test (codec_test.go) enforces value → JSON →
// value equality for every registered type.

// wireValue is one typed value envelope.
type wireValue struct {
	Type  string          `json:"type"`
	Value json.RawMessage `json:"value"`
}

var (
	decoders = map[string]func(json.RawMessage) (any, error){}
	tagOf    = map[reflect.Type]string{}
)

// register adds one concrete type to the codec under a stable tag.
func register[T any](tag string) {
	t := reflect.TypeOf((*T)(nil)).Elem()
	if _, dup := decoders[tag]; dup {
		panic(fmt.Sprintf("fleetwire: duplicate codec tag %q", tag))
	}
	if prev, dup := tagOf[t]; dup {
		panic(fmt.Sprintf("fleetwire: type %v already registered as %q", t, prev))
	}
	tagOf[t] = tag
	decoders[tag] = func(raw json.RawMessage) (any, error) {
		var v T
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, fmt.Errorf("fleetwire: decode %s: %w", tag, err)
		}
		return v, nil
	}
}

func init() {
	// Scalars and generic collections (planner literals, adapters).
	register[string]("string")
	register[bool]("bool")
	register[int]("int")
	register[float64]("float64")
	register[[]string]("[]string")

	// One tag per concrete step-input/-output type in the builtin
	// catalog (internal/core/catalog.go, catalog2.go). Growing the
	// catalog with a new port type means registering it here — the
	// codec test fails a scatter-able capability whose type is missing.
	register[nautilus.CableID]("nautilus.CableID")
	register[[]nautilus.CableID]("[]nautilus.CableID")
	register[[]netsim.LinkID]("[]netsim.LinkID")
	register[[]netip.Addr]("[]netip.Addr")
	register[[]core.GeoRow]("[]core.GeoRow")
	register[*xaminer.ImpactReport]("*xaminer.ImpactReport")
	register[[]xaminer.Event]("[]xaminer.Event")
	register[[]xaminer.EventImpact]("[]xaminer.EventImpact")
	register[xaminer.GlobalImpact]("xaminer.GlobalImpact")
	register[[]bgp.Message]("[]bgp.Message")
	register[[]bgp.Burst]("[]bgp.Burst")
	register[*traceroute.Archive]("*traceroute.Archive")
	register[core.LatencyFinding]("core.LatencyFinding")
	register[core.CascadeBundle]("core.CascadeBundle")
	register[topo.StressResult]("topo.StressResult")
	register[[]core.CableSuspect]("[]core.CableSuspect")
	register[core.Verdict]("core.Verdict")
	register[*core.Timeline]("*core.Timeline")
}

// codecTags returns every registered tag, sorted (for tests and
// diagnostics).
func codecTags() []string {
	out := make([]string, 0, len(decoders))
	for tag := range decoders {
		out = append(out, tag)
	}
	sort.Strings(out)
	return out
}

// encodeValue wraps one Go value in its tagged envelope.
func encodeValue(v any) (wireValue, error) {
	if v == nil {
		return wireValue{}, fmt.Errorf("fleetwire: cannot encode nil value")
	}
	tag, ok := tagOf[reflect.TypeOf(v)]
	if !ok {
		return wireValue{}, fmt.Errorf("fleetwire: no codec for %T", v)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return wireValue{}, fmt.Errorf("fleetwire: encode %s: %w", tag, err)
	}
	return wireValue{Type: tag, Value: raw}, nil
}

// decodeValue restores the concrete Go value from its envelope.
func decodeValue(wv wireValue) (any, error) {
	dec, ok := decoders[wv.Type]
	if !ok {
		return nil, fmt.Errorf("fleetwire: unknown codec tag %q", wv.Type)
	}
	return dec(wv.Value)
}

// encodeMap encodes a step input or output map.
func encodeMap(m map[string]any) (map[string]wireValue, error) {
	out := make(map[string]wireValue, len(m))
	for k, v := range m {
		wv, err := encodeValue(v)
		if err != nil {
			return nil, fmt.Errorf("%w (key %q)", err, k)
		}
		out[k] = wv
	}
	return out, nil
}

// decodeMap restores a step input or output map.
func decodeMap(m map[string]wireValue) (map[string]any, error) {
	out := make(map[string]any, len(m))
	for k, wv := range m {
		v, err := decodeValue(wv)
		if err != nil {
			return nil, fmt.Errorf("%w (key %q)", err, k)
		}
		out[k] = v
	}
	return out, nil
}

// Package nlq analyzes natural-language measurement queries: it
// tokenizes the query, extracts measurement entities (cable names,
// regions, countries, disaster types, probabilities, time windows,
// metrics) and classifies the analytical intent.
//
// This is the front half of QueryMind: the deterministic language
// analysis the paper's prompt-engineered agent performs before problem
// decomposition. The rules encode how measurement experts read queries
// ("at a country level" fixes the aggregation grain; "caused" demands
// causation; "assuming X% failure" sets the scenario probability).
package nlq

import (
	"regexp"
	"strconv"
	"strings"

	"arachnet/internal/geo"
	"arachnet/internal/nautilus"
)

// Intent is the top-level analytical goal of a query.
type Intent string

// Query intents, ordered from most to least specific.
const (
	IntentForensic       Intent = "forensic"        // establish causation for an observed anomaly
	IntentCascade        Intent = "cascade"         // cascading/secondary failure analysis
	IntentDisasterImpact Intent = "disaster-impact" // natural-disaster scenarios
	IntentCableImpact    Intent = "cable-impact"    // failure impact of named/bounded cables
	IntentGeneric        Intent = "generic"         // unrecognized measurement question
)

// TimeWindow captures a relative time mention such as "three days ago".
type TimeWindow struct {
	Mentioned bool
	Days      int
}

// Spec is the structured reading of a query.
type Spec struct {
	Raw       string
	Intent    Intent
	Cables    []nautilus.CableID
	Regions   []geo.Region
	Countries []string // ISO codes mentioned by name
	Disasters []string // "earthquake", "hurricane"
	// FailProb is the scenario failure probability (0 when unset).
	FailProb float64
	// AggLevel is "country" or "as" when the query pins the grain.
	AggLevel string
	Window   TimeWindow
	// Metrics lists observable quantities mentioned (latency, loss, ...).
	Metrics []string
	// WantsCausation is set when the query demands cause identification.
	WantsCausation bool
	// WantsIdentification is set when a specific culprit must be named.
	WantsIdentification bool
}

var (
	percentRe = regexp.MustCompile(`(\d+(?:\.\d+)?)\s*%`)
	probRe    = regexp.MustCompile(`probability\s+(?:of\s+)?(\d+(?:\.\d+)?)`)
	daysRe    = regexp.MustCompile(`(\d+|a|one|two|three|four|five|six|seven|ten)\s+(day|week)s?\s+ago`)
)

var numberWords = map[string]int{
	"a": 1, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
	"six": 6, "seven": 7, "ten": 10,
}

// Parse analyzes a query against a cable catalog (used to resolve cable
// names; may be nil to skip cable extraction).
func Parse(raw string, cat *nautilus.Catalog) Spec {
	s := Spec{Raw: raw}
	q := strings.ToLower(raw)

	s.Cables = extractCables(q, cat)
	s.Regions = extractRegions(q)
	s.Countries = extractCountries(q)
	s.Disasters = extractDisasters(q)
	s.FailProb = extractProbability(q)
	s.Window = extractWindow(q)
	s.Metrics = extractMetrics(q)

	if strings.Contains(q, "country level") || strings.Contains(q, "country-level") ||
		strings.Contains(q, "per country") || strings.Contains(q, "by country") {
		s.AggLevel = "country"
	} else if strings.Contains(q, "as level") || strings.Contains(q, "as-level") || strings.Contains(q, "per as") {
		s.AggLevel = "as"
	}

	s.WantsCausation = containsAny(q, "caused", "cause of", "root cause", "determine if", "due to what", "why")
	s.WantsIdentification = containsAny(q, "identify the specific", "which cable", "identify the cable", "name the cable")

	s.Intent = classify(q, s)
	return s
}

func classify(q string, s Spec) Intent {
	forensicSignals := 0
	if s.WantsCausation {
		forensicSignals++
	}
	if s.Window.Mentioned {
		forensicSignals++
	}
	if containsAny(q, "observed", "sudden", "anomaly", "investigat") {
		forensicSignals++
	}
	if len(s.Metrics) > 0 {
		forensicSignals++
	}
	switch {
	case forensicSignals >= 2:
		return IntentForensic
	case strings.Contains(q, "cascad"):
		return IntentCascade
	case len(s.Disasters) > 0:
		return IntentDisasterImpact
	case (len(s.Cables) > 0 || strings.Contains(q, "cable")) && containsAny(q, "impact", "effect", "affect", "failure", "fails", "losing", "loss"):
		return IntentCableImpact
	default:
		return IntentGeneric
	}
}

func containsAny(q string, subs ...string) bool {
	for _, s := range subs {
		if strings.Contains(q, s) {
			return true
		}
	}
	return false
}

// extractCables matches catalog cable names against the query using the
// catalog's own normalization, longest names first so "SeaMeWe-5" is
// not shadowed by a hypothetical "SeaMeWe".
func extractCables(q string, cat *nautilus.Catalog) []nautilus.CableID {
	if cat == nil {
		return nil
	}
	norm := normalize(q)
	var out []nautilus.CableID
	seen := map[nautilus.CableID]bool{}
	for _, c := range cat.Cables() {
		for _, alias := range []string{c.Name, string(c.ID)} {
			na := normalize(alias)
			if na != "" && strings.Contains(norm, na) && !seen[c.ID] {
				seen[c.ID] = true
				out = append(out, c.ID)
			}
		}
		// Short form without the parenthetical, e.g. "AAE-1 (Asia-…)".
		if i := strings.IndexByte(c.Name, '('); i > 0 {
			na := normalize(c.Name[:i])
			if na != "" && strings.Contains(norm, na) && !seen[c.ID] {
				seen[c.ID] = true
				out = append(out, c.ID)
			}
		}
	}
	return out
}

func normalize(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func extractRegions(q string) []geo.Region {
	var out []geo.Region
	seen := map[geo.Region]bool{}
	candidates := []string{
		"europe", "asia", "north america", "south america", "africa",
		"middle east", "oceania", "latam", "apac", "pacific", "gulf",
	}
	for _, c := range candidates {
		if !strings.Contains(q, c) {
			continue
		}
		if r, ok := geo.ParseRegion(c); ok && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

func extractCountries(q string) []string {
	var out []string
	for _, c := range geo.Countries() {
		name := strings.ToLower(c.Name)
		if strings.Contains(q, name) {
			out = append(out, c.Code)
		}
	}
	return out
}

func extractDisasters(q string) []string {
	var out []string
	if containsAny(q, "earthquake", "seismic", "quake") {
		out = append(out, "earthquake")
	}
	if containsAny(q, "hurricane", "typhoon", "cyclone", "storm") {
		out = append(out, "hurricane")
	}
	return out
}

func extractProbability(q string) float64 {
	if m := percentRe.FindStringSubmatch(q); m != nil {
		if v, err := strconv.ParseFloat(m[1], 64); err == nil && v >= 0 && v <= 100 {
			return v / 100
		}
	}
	if m := probRe.FindStringSubmatch(q); m != nil {
		if v, err := strconv.ParseFloat(m[1], 64); err == nil {
			if v <= 1 {
				return v
			}
			if v <= 100 {
				return v / 100
			}
		}
	}
	return 0
}

func extractWindow(q string) TimeWindow {
	m := daysRe.FindStringSubmatch(q)
	if m == nil {
		return TimeWindow{}
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		var ok bool
		n, ok = numberWords[m[1]]
		if !ok {
			return TimeWindow{}
		}
	}
	if m[2] == "week" {
		n *= 7
	}
	return TimeWindow{Mentioned: true, Days: n}
}

func extractMetrics(q string) []string {
	var out []string
	if containsAny(q, "latency", "rtt", "delay", "slow") {
		out = append(out, "latency")
	}
	if containsAny(q, "packet loss", "loss rate", "unreachable", "outage") {
		out = append(out, "loss")
	}
	if containsAny(q, "throughput", "bandwidth") {
		out = append(out, "throughput")
	}
	return out
}

// Complexity scores how much integration the query demands; the
// adaptive-exploration policy of WorkflowScout keys off it. One point
// each for: multi-region scope, temporal analysis, causation, cascade
// language, multiple disaster types, and per-metric evidence.
func (s Spec) Complexity() int {
	score := 0
	if len(s.Regions) >= 2 {
		score++
	}
	if s.Window.Mentioned {
		score++
	}
	if s.WantsCausation {
		score++
	}
	if s.Intent == IntentCascade {
		score += 2
	}
	if s.Intent == IntentForensic {
		score += 2
	}
	if len(s.Disasters) >= 2 {
		score++
	}
	score += len(s.Metrics)
	return score
}

package nlq

import (
	"testing"

	"arachnet/internal/geo"
	"arachnet/internal/nautilus"
)

// The four paper case-study queries, verbatim.
const (
	queryCS1 = "Identify the impact at a country level due to SeaMeWe-5 cable failure"
	queryCS2 = "Identify the impact of severe earthquakes and hurricanes globally assuming a 10% infra failure probability"
	queryCS3 = "Analyze the cascading effects of submarine cable failures between Europe and Asia"
	queryCS4 = "A sudden increase in latency was observed from European probes to Asian destinations starting three days ago. Determine if a submarine cable failure caused this, and if so, identify the specific cable."
)

func cat(t testing.TB) *nautilus.Catalog {
	t.Helper()
	return nautilus.BuildCatalog()
}

func TestParseCS1(t *testing.T) {
	s := Parse(queryCS1, cat(t))
	if s.Intent != IntentCableImpact {
		t.Errorf("intent = %s", s.Intent)
	}
	if len(s.Cables) != 1 || s.Cables[0] != "seamewe-5" {
		t.Errorf("cables = %v", s.Cables)
	}
	if s.AggLevel != "country" {
		t.Errorf("agg = %q", s.AggLevel)
	}
	if s.WantsCausation || s.Window.Mentioned {
		t.Error("CS1 should not demand causation or time window")
	}
}

func TestParseCS2(t *testing.T) {
	s := Parse(queryCS2, cat(t))
	if s.Intent != IntentDisasterImpact {
		t.Errorf("intent = %s", s.Intent)
	}
	if len(s.Disasters) != 2 {
		t.Errorf("disasters = %v", s.Disasters)
	}
	if s.FailProb != 0.10 {
		t.Errorf("failProb = %f", s.FailProb)
	}
}

func TestParseCS3(t *testing.T) {
	s := Parse(queryCS3, cat(t))
	if s.Intent != IntentCascade {
		t.Errorf("intent = %s", s.Intent)
	}
	want := map[geo.Region]bool{geo.Europe: true, geo.Asia: true}
	if len(s.Regions) != 2 || !want[s.Regions[0]] || !want[s.Regions[1]] {
		t.Errorf("regions = %v", s.Regions)
	}
}

func TestParseCS4(t *testing.T) {
	s := Parse(queryCS4, cat(t))
	if s.Intent != IntentForensic {
		t.Errorf("intent = %s", s.Intent)
	}
	if !s.WantsCausation {
		t.Error("causation not detected")
	}
	if !s.WantsIdentification {
		t.Error("culprit identification not detected")
	}
	if !s.Window.Mentioned || s.Window.Days != 3 {
		t.Errorf("window = %+v", s.Window)
	}
	if len(s.Metrics) != 1 || s.Metrics[0] != "latency" {
		t.Errorf("metrics = %v", s.Metrics)
	}
	if len(s.Regions) != 2 {
		t.Errorf("regions = %v", s.Regions)
	}
}

func TestComplexityOrdering(t *testing.T) {
	c := cat(t)
	c1 := Parse(queryCS1, c).Complexity()
	c2 := Parse(queryCS2, c).Complexity()
	c3 := Parse(queryCS3, c).Complexity()
	c4 := Parse(queryCS4, c).Complexity()
	if !(c1 < c3 && c1 < c4) {
		t.Errorf("CS1 (%d) should be simpler than CS3 (%d) and CS4 (%d)", c1, c3, c4)
	}
	if c4 < c3 {
		t.Errorf("forensic CS4 (%d) should be at least as complex as CS3 (%d)", c4, c3)
	}
	_ = c2
}

func TestExtractProbabilityForms(t *testing.T) {
	cases := map[string]float64{
		"assuming a 10% failure":         0.10,
		"with 2.5% of links down":        0.025,
		"failure probability of 0.3":     0.3,
		"probability 25":                 0.25,
		"no probability here":            0,
		"a 150% failure makes no sense":  0, // out of range
		"blackout probability of potato": 0,
	}
	for q, want := range cases {
		if got := extractProbability(q); got != want {
			t.Errorf("extractProbability(%q) = %f, want %f", q, got, want)
		}
	}
}

func TestExtractWindowForms(t *testing.T) {
	cases := map[string]TimeWindow{
		"started three days ago": {Mentioned: true, Days: 3},
		"began 5 days ago":       {Mentioned: true, Days: 5},
		"since two weeks ago":    {Mentioned: true, Days: 14},
		"one day ago it broke":   {Mentioned: true, Days: 1},
		"a week ago":             {Mentioned: true, Days: 7},
		"some time in the past":  {},
		"in three days from now": {},
	}
	for q, want := range cases {
		if got := extractWindow(q); got != want {
			t.Errorf("extractWindow(%q) = %+v, want %+v", q, got, want)
		}
	}
}

func TestExtractCablesMultiple(t *testing.T) {
	s := Parse("compare AAE-1 against FALCON and the Europe India Gateway", cat(t))
	want := map[nautilus.CableID]bool{"aae-1": true, "falcon": true, "eig": true}
	if len(s.Cables) != 3 {
		t.Fatalf("cables = %v", s.Cables)
	}
	for _, c := range s.Cables {
		if !want[c] {
			t.Errorf("unexpected cable %s", c)
		}
	}
}

func TestExtractCablesNilCatalog(t *testing.T) {
	s := Parse(queryCS1, nil)
	if len(s.Cables) != 0 {
		t.Errorf("cables without catalog = %v", s.Cables)
	}
}

func TestExtractCountries(t *testing.T) {
	s := Parse("how does an outage in Egypt affect Singapore and France", cat(t))
	want := map[string]bool{"EG": true, "SG": true, "FR": true}
	if len(s.Countries) != 3 {
		t.Fatalf("countries = %v", s.Countries)
	}
	for _, c := range s.Countries {
		if !want[c] {
			t.Errorf("unexpected country %s", c)
		}
	}
}

func TestIntentDisasterWithoutCables(t *testing.T) {
	s := Parse("what would a severe typhoon do to connectivity", cat(t))
	if s.Intent != IntentDisasterImpact {
		t.Errorf("intent = %s", s.Intent)
	}
	if len(s.Disasters) != 1 || s.Disasters[0] != "hurricane" {
		t.Errorf("disasters = %v", s.Disasters)
	}
}

func TestIntentGeneric(t *testing.T) {
	s := Parse("list all autonomous systems in the dataset", cat(t))
	if s.Intent != IntentGeneric {
		t.Errorf("intent = %s", s.Intent)
	}
}

func TestAggLevelAS(t *testing.T) {
	s := Parse("show the blast radius per AS for an AAE-1 cut", cat(t))
	if s.AggLevel != "as" {
		t.Errorf("agg = %q", s.AggLevel)
	}
}

func TestMetricsExtraction(t *testing.T) {
	s := Parse("throughput dropped and packet loss spiked with high rtt", cat(t))
	if len(s.Metrics) != 3 {
		t.Errorf("metrics = %v", s.Metrics)
	}
}

func BenchmarkParse(b *testing.B) {
	c := nautilus.BuildCatalog()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parse(queryCS4, c)
	}
}

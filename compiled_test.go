package arachnet_test

// Compiled warm path, end to end: a System serving from compiled
// plans must be observationally identical to one forced onto the
// interpreted path — across cold asks, warm replays, scenario
// injections and curation promotions — and a warm compiled Ask must
// stay within a small allocation budget. A -race hammer then drives
// concurrent asks through the compiled path while promotions and
// scenario injections advance the registry generation and environment
// epoch underneath.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"arachnet"
)

// pairedSystems builds two identically seeded small-world systems and
// forces the second onto the interpreted path.
func pairedSystems(t *testing.T, seed uint64) (compiled, interpreted *arachnet.System) {
	t.Helper()
	build := func() *arachnet.System {
		sys, err := arachnet.New(arachnet.WithSmallWorld(seed))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	compiled, interpreted = build(), build()
	interpreted.SetCompiledPlans(false)
	return compiled, interpreted
}

// TestCompiledMatchesInterpreted is the byte-identity acceptance
// gate: the same sequence of asks (cold, warm, post-injection, with
// curation promoting composites along the way) must produce
// byte-identical reports whether plans are replayed compiled or
// interpreted.
func TestCompiledMatchesInterpreted(t *testing.T) {
	const (
		cs1 = "Identify the impact at a country level due to SeaMeWe-5 cable failure"
		cs4 = "A sudden increase in latency was observed from European probes to Asian destinations starting three days ago. Determine if a submarine cable failure caused this, and if so, identify the specific cable."
	)
	comp, interp := pairedSystems(t, 42)

	type action struct {
		label  string
		query  string // "" means inject the scenario instead
		inject uint64
	}
	script := []action{
		{label: "cold cs1", query: cs1},
		{label: "warm cs1", query: cs1},
		{label: "inject scenario", inject: 5},
		{label: "cold cs4 post-injection", query: cs4},
		{label: "warm cs4", query: cs4},
		{label: "cs1 replanned after epoch bump", query: cs1},
	}
	for _, a := range script {
		if a.query == "" {
			sc := arachnet.ScenarioConfig{Seed: a.inject}
			if err := comp.Environment().InjectCableFailureScenario(sc); err != nil {
				t.Fatal(err)
			}
			if err := interp.Environment().InjectCableFailureScenario(sc); err != nil {
				t.Fatal(err)
			}
			continue
		}
		repC, err := comp.Ask(ctx, a.query)
		if err != nil {
			t.Fatalf("%s (compiled): %v", a.label, err)
		}
		repI, err := interp.Ask(ctx, a.query)
		if err != nil {
			t.Fatalf("%s (interpreted): %v", a.label, err)
		}
		jc, ji := normalizedReport(t, repC), normalizedReport(t, repI)
		if string(jc) != string(ji) {
			t.Errorf("%s: compiled and interpreted reports differ:\ncompiled:    %s\ninterpreted: %s",
				a.label, jc, ji)
		}
	}
	// Both systems walked the same history, so curation must have
	// promoted identically — the registries stayed in lockstep.
	if cg, ig := comp.Registry().Generation(), interp.Registry().Generation(); cg != ig {
		t.Errorf("registry generations diverged: compiled %d, interpreted %d", cg, ig)
	}
}

// TestCompiledConcurrentHammer drives concurrent asks through the
// compiled warm path of a fleet-backed system while curation promotes
// composites and scenario injections advance the environment epoch —
// the -race job's compiled workout. Cross-epoch results are not
// comparable; the test asserts every ask succeeds and the caches stay
// coherent.
func TestCompiledConcurrentHammer(t *testing.T) {
	sys, err := arachnet.New(arachnet.WithSmallWorld(42), arachnet.WithFleet(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Fleet().Close)
	queries := []string{
		"Identify the impact at a country level due to SeaMeWe-5 cable failure",
		"Identify the impact at a country level due to SeaMeWe-4 cable failure",
		"Identify the impact at a country level due to AAE-1 cable failure",
	}
	askers, rounds := 8, 5
	if testing.Short() {
		askers, rounds = 4, 2
	}

	var wg sync.WaitGroup
	errc := make(chan error, askers*rounds+rounds)
	for g := 0; g < askers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q := queries[(g+r)%len(queries)]
				// Curation deliberately left on: promotions bump the
				// registry generation mid-hammer, forcing plan-cache
				// invalidation and recompilation under load.
				if _, err := sys.Ask(ctx, q); err != nil {
					errc <- fmt.Errorf("asker %d round %d: %w", g, r, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			sc := arachnet.ScenarioConfig{Seed: uint64(200 + r)}
			if err := sys.Environment().InjectCableFailureScenario(sc); err != nil {
				errc <- fmt.Errorf("inject round %d: %w", r, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := sys.CacheStats()
	if st.Plan.Hits == 0 {
		t.Errorf("no plan-cache hits under the hammer: %+v", st.Plan)
	}
}

// TestWarmAskAllocCeiling pins the allocation budget of a fully warm
// compiled Ask: plan compiled and memoized, every step a cache hit.
// The interpreted path re-validates, re-resolves and re-hashes the
// whole plan per ask; the compiled path must stay under a budget an
// order of magnitude below that. The ceiling carries ~2x headroom
// over the measured cost so it catches regressions, not jitter.
func TestWarmAskAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is unreliable under -short (race) runs")
	}
	const query = "Identify the impact at a country level due to SeaMeWe-5 cable failure"
	sys, err := arachnet.New(arachnet.WithSmallWorld(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // compile, memoize, warm every step cache
		if _, err := sys.Ask(ctx, query, arachnet.AskWithoutCuration()); err != nil {
			t.Fatal(err)
		}
	}
	avg := allocsPerAsk(t, sys, query, 100)
	t.Logf("warm compiled Ask: %.0f allocs/op", avg)
	const ceiling = 50
	if avg > ceiling {
		t.Errorf("warm compiled Ask allocates %.0f/op, budget %d", avg, ceiling)
	}
}

// allocsPerAsk measures mean heap allocations per warm Ask. The
// pipeline runs steps on worker goroutines, so this uses a
// whole-process Mallocs delta (like ReadMemStats-based benchmarks)
// rather than testing.AllocsPerRun's current-goroutine accounting.
func allocsPerAsk(t *testing.T, sys *arachnet.System, query string, runs int) float64 {
	t.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		if _, err := sys.Ask(ctx, query, arachnet.AskWithoutCuration()); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

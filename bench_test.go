package arachnet_test

// Benchmarks regenerating the paper's evaluation artifacts, one per
// table/figure (see DESIGN.md §3 for the experiment index):
//
//	F1   BenchmarkPipeline            — the four-agent pipeline end to end
//	CS1  BenchmarkCaseStudy1          — expert-replication cable impact
//	CS2  BenchmarkCaseStudy2          — multi-disaster impact
//	CS3  BenchmarkCaseStudy3          — Europe–Asia cascade
//	CS4  BenchmarkCaseStudy4          — forensic root cause
//	A1   BenchmarkRegistryCompactness — planning over compact vs bloated registries
//	A3   BenchmarkCuratorMining       — pattern mining + promotion
//
// Benchmarks run on the small world so they are stable and fast; the
// full-world numbers are produced by cmd/arachnet-bench.

import (
	"fmt"
	"testing"

	"arachnet"
)

var benchQueries = map[int]string{
	1: "Identify the impact at a country level due to SeaMeWe-5 cable failure",
	2: "Identify the impact of severe earthquakes and hurricanes globally assuming a 10% infra failure probability",
	3: "Analyze the cascading effects of submarine cable failures between Europe and Asia",
	4: "A sudden increase in latency was observed from European probes to Asian destinations starting three days ago. Determine if a submarine cable failure caused this, and if so, identify the specific cable.",
}

func benchSystem(b *testing.B, scenario bool) *arachnet.System {
	b.Helper()
	opts := []arachnet.Option{arachnet.WithSmallWorld(7)}
	if scenario {
		opts = append(opts, arachnet.WithScenario(arachnet.ScenarioConfig{Seed: 5}))
	}
	sys, err := arachnet.New(opts...)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func benchCase(b *testing.B, n int, scenario bool) {
	sys := benchSystem(b, scenario)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Ask(ctx, benchQueries[n], arachnet.AskWithoutCuration()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeline measures Figure 1's full pipeline (parse →
// QueryMind → WorkflowScout → SolutionWeaver → execute).
func BenchmarkPipeline(b *testing.B) { benchCase(b, 1, false) }

// BenchmarkCaseStudy1 measures the Case Study 1 workflow under the
// paper's restricted registry (core Nautilus functions only).
func BenchmarkCaseStudy1(b *testing.B) {
	sub, err := arachnet.BuiltinRegistry().Subset(arachnet.CS1RegistryNames()...)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := arachnet.New(
		arachnet.WithSmallWorld(7), arachnet.WithRegistry(sub),
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Ask(ctx, benchQueries[1], arachnet.AskWithoutCuration()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCaseStudy2 measures the multi-disaster workflow.
func BenchmarkCaseStudy2(b *testing.B) { benchCase(b, 2, false) }

// BenchmarkCaseStudy3 measures the cascading-failure workflow
// (multi-framework integration).
func BenchmarkCaseStudy3(b *testing.B) { benchCase(b, 3, true) }

// BenchmarkCaseStudy4 measures the forensic investigation.
func BenchmarkCaseStudy4(b *testing.B) { benchCase(b, 4, true) }

// BenchmarkRegistryCompactness is the A1 ablation: planning cost over
// the compact builtin registry versus one bloated with irrelevant
// entries — the paper's rationale for capability-level registries over
// full codebase exposure.
func BenchmarkRegistryCompactness(b *testing.B) {
	for _, size := range []int{0, 100, 400} {
		b.Run(fmt.Sprintf("extra=%d", size), func(b *testing.B) {
			reg := arachnet.BuiltinRegistry()
			for i := 0; i < size; i++ {
				err := reg.Register(arachnet.Capability{
					Name:        fmt.Sprintf("bloat%d.filler", i),
					Framework:   fmt.Sprintf("bloat%d", i%17),
					Description: "an implementation detail that should never be planned over",
					Outputs: []arachnet.Port{{
						Name: "noise",
						Type: arachnet.DataType(fmt.Sprintf("bloat.t%d", i)),
					}},
					Impl: func(c *arachnet.Call) error { return nil },
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			sys, err := arachnet.New(
				arachnet.WithSmallWorld(7), arachnet.WithRegistry(reg),
			)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Ask(ctx, benchQueries[1], arachnet.AskWithoutCuration()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCuratorMining is the A3 experiment: registry evolution cost
// across repeated successful runs.
func BenchmarkCuratorMining(b *testing.B) {
	sub, err := arachnet.BuiltinRegistry().Subset(arachnet.CS1RegistryNames()...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := arachnet.New(
			arachnet.WithSmallWorld(7), arachnet.WithRegistry(sub.Clone()),
		)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		// Curation stays on: registry evolution is what this measures.
		if _, err := sys.Ask(ctx, benchQueries[1]); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Ask(ctx, "Identify the impact at a country level due to SeaMeWe-4 cable failure"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAskStreamDrain measures the full event path: the same run
// as BenchmarkPipeline, consumed by draining AskStream. The delta
// against BenchmarkPipeline is the cost of channel-based delivery; the
// acceptance bar for the streaming redesign is ≤5% over plain Ask.
func BenchmarkAskStreamDrain(b *testing.B) {
	sys := benchSystem(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ev := range sys.AskStream(ctx, benchQueries[1], arachnet.AskWithoutCuration()) {
			if d, ok := ev.(*arachnet.Done); ok && d.Err != nil {
				b.Fatal(d.Err)
			}
		}
	}
}

// BenchmarkAskObserved measures Ask with a registered (no-op)
// observer: the inline event path without any channel.
func BenchmarkAskObserved(b *testing.B) {
	sys := benchSystem(b, false)
	nop := arachnet.ObserverFunc(func(arachnet.Event) error { return nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Ask(ctx, benchQueries[1], arachnet.AskWithoutCuration(), arachnet.AskObserver(nop)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubmitWait measures per-job overhead of the async queue
// versus calling Ask directly.
func BenchmarkSubmitWait(b *testing.B) {
	sys := benchSystem(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := sys.Submit(ctx, benchQueries[1], arachnet.AskWithoutCuration())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := j.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAskWarmCache measures fully memoized serving: the plan
// cache skips the three planning agents and the step cache serves
// every pure step, so this is the repeated-query fast path. The PR 5
// acceptance bar is ≥ 5× faster than the cold path below.
func BenchmarkAskWarmCache(b *testing.B) {
	sys := benchSystem(b, false)
	if _, err := sys.Ask(ctx, benchQueries[1], arachnet.AskWithoutCuration()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Ask(ctx, benchQueries[1], arachnet.AskWithoutCuration()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAskColdCache measures the cache-miss path: caches enabled
// (so fingerprinting and write-back are paid) but flushed before every
// iteration. The flush runs inside the timed region on purpose —
// clearing the handful of entries one Ask leaves behind costs well
// under a microsecond, whereas excluding it via StopTimer/StartTimer
// would stop the world (ReadMemStats) every iteration and inflate the
// measurement far more than the flush itself. The delta against
// BenchmarkAskNoCache is the memoization overhead on a miss; the PR 5
// acceptance bar is ≤ 5% over the PR 2 no-cache baseline.
func BenchmarkAskColdCache(b *testing.B) {
	sys := benchSystem(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.SetCacheLimits(0, 0, 0) // flush
		sys.SetCacheLimits(arachnet.DefaultPlanCacheEntries,
			arachnet.DefaultStepCacheEntries, arachnet.DefaultStepCacheBytes)
		if _, err := sys.Ask(ctx, benchQueries[1], arachnet.AskWithoutCuration()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAskNoCache measures the cache-bypass path (AskNoCache): no
// fingerprints, no lookups — the PR 2 serving path, kept as the
// trajectory baseline.
func BenchmarkAskNoCache(b *testing.B) {
	sys := benchSystem(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Ask(ctx, benchQueries[1], arachnet.AskWithoutCuration(), arachnet.AskNoCache()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneratedCode measures SolutionWeaver's code generation in
// isolation (re-asking with curation off re-runs the whole pipeline;
// the LoC table itself comes from cmd/arachnet-bench -loc).
func BenchmarkGeneratedCode(b *testing.B) {
	sys := benchSystem(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sys.Ask(ctx, benchQueries[4], arachnet.AskWithoutCuration())
		if err != nil {
			b.Fatal(err)
		}
		if rep.Solution.LoC == 0 {
			b.Fatal("no code generated")
		}
	}
}

// benchFleetCase measures the CS1 fan-out workflow served through a
// worker fleet of n shards. The restricted CS1 registry forces the
// extract_ips → locate_ips chain, whose steps scatter-gather across
// the fleet; n=0 is the inline-execution baseline.
func benchFleetCase(b *testing.B, n int) {
	b.Helper()
	sub, err := arachnet.BuiltinRegistry().Subset(arachnet.CS1RegistryNames()...)
	if err != nil {
		b.Fatal(err)
	}
	opts := []arachnet.Option{arachnet.WithSmallWorld(7), arachnet.WithRegistry(sub)}
	if n > 0 {
		opts = append(opts, arachnet.WithFleet(n))
	}
	sys, err := arachnet.New(opts...)
	if err != nil {
		b.Fatal(err)
	}
	if f := sys.Fleet(); f != nil {
		defer f.Close()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Ask(ctx, benchQueries[1], arachnet.AskWithoutCuration()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAskFleet compares inline execution against sharded fleets
// on the scatter-gather CS1 workflow (PR 8 trajectory point).
func BenchmarkAskFleet(b *testing.B) {
	for _, n := range []int{0, 1, 4} {
		b.Run(fmt.Sprintf("fleet=%d", n), func(b *testing.B) { benchFleetCase(b, n) })
	}
}

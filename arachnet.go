// Package arachnet is the public API of ArachNet-Go, a reproduction of
// "Towards an Agentic Workflow for Internet Measurement Research"
// (HotNets 2025): four specialized agents — QueryMind, WorkflowScout,
// SolutionWeaver and RegistryCurator — that turn natural-language
// measurement questions into executable, quality-checked measurement
// workflows over a curated capability registry.
//
// The package also ships every substrate the workflows run on: a
// seeded synthetic Internet, Nautilus-style submarine-cable
// cartography, Xaminer-style resilience analysis, a policy-aware BGP
// simulator, a traceroute campaign engine, and cascade modeling.
//
// A System is built once and safely shared, and its pipeline is
// observable end to end through a typed event model: every run emits
// StageStarted/StageCompleted for the five pipeline stages,
// StepStarted/StepCompleted/StepFailed for each workflow step the DAG
// engine executes, CurationPromoted for registry evolution, and a
// terminal Done carrying the Report. One pipeline implementation
// serves three consumption styles:
//
//   - Ask(ctx, query, ...AskOption) blocks and returns the Report —
//     a synchronous drain of the event path.
//   - AskStream(ctx, query, ...AskOption) returns <-chan Event
//     immediately; consume events until the channel closes after Done.
//   - Submit(ctx, query, ...AskOption) enqueues an async Job on a
//     bounded queue served by a worker pool; track it with Job.Events
//     (replayable), Job.Wait, Job.Cancel and sys.Jobs.
//
// Per-call options (AskExpert, AskObserver, AskWithoutCuration,
// AskTimeout, AskParallelism, AskNoCache) let one shared System serve
// heterogeneous requests; AskBatch fans a query set out over a bounded
// worker pool and runs duplicate queries once (singleflight). Expert
// review is itself just an event observer that may veto a stage.
//
// Serving is memoized at two layers. A plan cache keyed by (query,
// registry generation, environment) skips the three planning agents
// for repeat queries and is invalidated automatically whenever the
// curator promotes a composite; a step cache memoizes Pure capability
// executions across runs by a deterministic fingerprint of the
// computation. Cached work still emits events, flagged Cached. Inspect
// with System.CacheStats, tune or disable with System.SetCacheLimits,
// and bypass per call with AskNoCache.
//
// The warm path is additionally compiled: when a plan first lands in
// the cache it is lowered to a pre-resolved execution artifact
// (capability pointers, dependency schedule, fingerprint templates —
// see internal/workflow.CompiledPlan), so repeat servings skip every
// per-run lookup and re-canonicalization the interpreted engine
// performs, byte-identically. Compilation shares the plan cache's
// invalidation exactly; System.SetCompiledPlans(false) forces the
// interpreted path (A/B benchmarks). Warm state also survives
// restarts: System.SaveSnapshot writes both caches to a versioned,
// fingerprint-validated document and System.LoadSnapshot restores it
// into a freshly built equivalent System (see the -snapshot flag on
// cmd/arachnet, cmd/arachnet-serve and cmd/arachnet-bench).
//
// Continuous monitoring turns one-shot queries into standing ones:
// Subscribe(ctx, query, ...AskOption) registers a query that
// re-executes automatically whenever the environment mutates (scenario
// injection) or the registry evolves, and emits typed delta events —
// ResultChanged with a structured diff, AnomalyAppeared/AnomalyCleared
// for detector findings, ResultUnchanged heartbeats — instead of full
// reports. Re-execution is incremental: capabilities declare which
// environment facets they read (Capability.Reads), so only steps whose
// facet fingerprints changed actually run; the rest replay from the
// step cache.
//
// For serving over the network, cmd/arachnet-serve exposes the same
// pipeline as a multi-tenant HTTP/JSON + SSE service (package
// internal/serve): each tenant gets its own registry view and cache
// quotas, and all tenants compete for one worker pool through a shared
// weighted-fair Scheduler (System.SetScheduler).
//
// Quickstart:
//
//	sys, err := arachnet.New(arachnet.WithSeed(42))
//	if err != nil { ... }
//	report, err := sys.Ask(ctx, "Identify the impact at a country level due to SeaMeWe-5 cable failure")
//	if err != nil { ... }
//	fmt.Println(report.Solution.Code)   // the generated workflow program
//	fmt.Println(report.Result.Outputs)  // the executed analysis results
//
// Streaming the same run instead:
//
//	for ev := range sys.AskStream(ctx, query) {
//		switch ev := ev.(type) {
//		case *arachnet.StepCompleted:
//			fmt.Println("step", ev.Step, "in", ev.Duration)
//		case *arachnet.Done:
//			report, err = ev.Report, ev.Err
//		}
//	}
package arachnet

import (
	"fmt"
	"time"

	"arachnet/internal/agents/querymind"
	"arachnet/internal/agents/registrycurator"
	"arachnet/internal/agents/solutionweaver"
	"arachnet/internal/agents/workflowscout"
	"arachnet/internal/core"
	"arachnet/internal/eval"
	"arachnet/internal/expert"
	"arachnet/internal/fleet"
	"arachnet/internal/fleetwire"
	"arachnet/internal/geo"
	"arachnet/internal/netsim"
	"arachnet/internal/registry"
	"arachnet/internal/workflow"
	"arachnet/internal/xaminer"
)

// Re-exported core types. Aliases keep the public surface thin while
// the implementation lives in internal packages.
type (
	// System is the assembled four-agent pipeline.
	System = core.System
	// Report is the full record of one pipeline run.
	Report = core.Report
	// Environment is the simulated measurement environment.
	Environment = core.Environment
	// Registry is the capability catalog agents plan over.
	Registry = registry.Registry
	// Capability is one registry entry.
	Capability = registry.Capability
	// Port is one typed input/output of a capability.
	Port = registry.Port
	// Call is the invocation context passed to capability
	// implementations.
	Call = registry.Call
	// DataType names a value format flowing between capabilities.
	DataType = registry.DataType
	// AskOption configures one Ask, AskStream, AskBatch or Submit call.
	AskOption = core.AskOption
	// ReviewHook inspects artifacts between stages in expert mode.
	ReviewHook = core.ReviewHook
	// Event is one observable occurrence in a run's lifecycle; consume
	// the concrete types below with a type switch.
	Event = core.Event
	// EventMeta is the header (query, sequence, time) common to every
	// event.
	EventMeta = core.EventMeta
	// StageStarted announces a pipeline stage about to run.
	StageStarted = core.StageStarted
	// StageCompleted carries the artifact leaving a pipeline stage.
	StageCompleted = core.StageCompleted
	// StepStarted announces one workflow step being dispatched.
	StepStarted = core.StepStarted
	// StepCompleted reports one workflow step finishing successfully.
	StepCompleted = core.StepCompleted
	// StepFailed reports one workflow step failing.
	StepFailed = core.StepFailed
	// CurationPromoted reports one composite promoted after a run.
	CurationPromoted = core.CurationPromoted
	// Done is the terminal event of every run.
	Done = core.Done
	// Observer watches a call's event stream and may veto stages.
	Observer = core.Observer
	// ObserverFunc adapts a function to the Observer interface.
	ObserverFunc = core.ObserverFunc
	// Job is one asynchronously-served query (see System.Submit).
	Job = core.Job
	// JobState is the lifecycle phase of a Job.
	JobState = core.JobState
	// CacheStats is the observable state of a System's plan and step
	// caches (see System.CacheStats).
	CacheStats = core.CacheStats
	// CacheCounters is the hit/miss/eviction state of one cache.
	CacheCounters = core.CacheCounters
	// Fleet is a sharded worker pool for DIMES-style distributed
	// execution (see WithFleet and System.SetFleet).
	Fleet = fleet.Fleet
	// FleetStats snapshots fleet dispatch counters and per-worker
	// shard inventory (surfaced through CacheStats.Fleet).
	FleetStats = fleet.Stats
	// FleetShardStats describes one worker's shard and local cache.
	FleetShardStats = fleet.ShardStats
	// FleetWireStats counts remote-transport activity when the fleet
	// runs over real worker processes (see WithRemoteFleet); surfaced
	// as FleetStats.Wire.
	FleetWireStats = fleet.WireStats
	// JobSummary is a serialization-friendly snapshot of one Job.
	JobSummary = core.JobSummary
	// Scheduler is a weighted-fair job queue plus its worker pool;
	// share one across Systems via System.SetScheduler for
	// multi-tenant serving (see internal/serve and cmd/arachnet-serve
	// for the HTTP tier built on it).
	Scheduler = core.Scheduler
	// ClassConfig weights and bounds one scheduling class.
	ClassConfig = core.ClassConfig
	// ClassStats is the observable state of one scheduling class.
	ClassStats = core.ClassStats
	// QueueStats is the observable state of a Scheduler.
	QueueStats = core.QueueStats
	// Subscription is one standing query under continuous monitoring
	// (see System.Subscribe): it re-executes automatically when the
	// environment or the registry changes and emits the delta events
	// below instead of full reports.
	Subscription = core.Subscription
	// SubEvent is one observable occurrence in a subscription's
	// lifecycle; consume the concrete types below with a type switch.
	SubEvent = core.SubEvent
	// SubEventMeta is the header (subscription, sequence, revision,
	// time) common to every subscription event.
	SubEventMeta = core.SubEventMeta
	// SubscriptionStarted carries the baseline run's report (or error).
	SubscriptionStarted = core.SubscriptionStarted
	// ResultChanged reports a re-execution whose result differs from
	// the previous one, as a structured delta.
	ResultChanged = core.ResultChanged
	// ResultUnchanged is the heartbeat of a re-execution that replayed
	// to an identical result.
	ResultUnchanged = core.ResultUnchanged
	// AnomalyAppeared reports a measurement anomaly newly present in
	// the standing query's result.
	AnomalyAppeared = core.AnomalyAppeared
	// AnomalyCleared reports a previously-seen anomaly disappearing.
	AnomalyCleared = core.AnomalyCleared
	// SubscriptionClosed is the terminal event of every subscription.
	SubscriptionClosed = core.SubscriptionClosed
	// ResultDelta is the structured difference between two runs of a
	// standing query.
	ResultDelta = core.ResultDelta
	// OutputDiff is one changed output path within a ResultDelta.
	OutputDiff = core.OutputDiff
	// AnomalySignal is one detector finding extracted from a result.
	AnomalySignal = core.AnomalySignal
)

// Change causes labeling ResultChanged/ResultUnchanged events.
const (
	// CauseEnvironment marks a re-execution triggered by an environment
	// mutation (scenario injection).
	CauseEnvironment = core.CauseEnvironment
	// CauseRegistry marks a re-execution triggered by registry
	// evolution (capability registration or curator promotion).
	CauseRegistry = core.CauseRegistry
)

// Environment facets a capability may read (Capability.Reads);
// facet-scoped fingerprints are what make subscription re-execution
// incremental.
const (
	// FacetWorld is the immutable generated world.
	FacetWorld = core.FacetWorld
	// FacetScenario is the injectable measurement scenario.
	FacetScenario = core.FacetScenario
)

// NewScheduler builds a shared weighted-fair scheduler with the given
// worker-pool size and global queue depth (non-positive values mean
// GOMAXPROCS workers and depth 128). Attach Systems to it with
// System.SetScheduler(sched, class) before their first Submit.
func NewScheduler(workers, depth int) *Scheduler { return core.NewScheduler(workers, depth) }

// Default cache bounds applied by New; see System.SetCacheLimits. A
// flush is a disable/re-enable cycle: SetCacheLimits(0, 0, 0) followed
// by SetCacheLimits with these values restores the stock configuration
// with empty caches.
const (
	DefaultPlanCacheEntries = core.DefaultPlanCacheEntries
	DefaultStepCacheEntries = core.DefaultStepCacheEntries
	DefaultStepCacheBytes   = core.DefaultStepCacheBytes
)

type (
	// Promotion is one composite capability promoted by the curator.
	Promotion = registrycurator.Promotion
	// PipelineError is the typed failure of one Ask: stage, failing
	// workflow step, and query. errors.Is/As see through it.
	PipelineError = core.PipelineError
	// StepError is the typed failure of one workflow step.
	StepError = workflow.StepError
	// ScenarioConfig controls forensic-scenario injection.
	ScenarioConfig = core.ScenarioConfig
	// ImpactReport is a per-country impact table.
	ImpactReport = xaminer.ImpactReport
	// GlobalImpact is a combined multi-event impact view.
	GlobalImpact = xaminer.GlobalImpact
	// Verdict is a forensic causation verdict.
	Verdict = core.Verdict
	// Timeline is a unified cross-layer cascade timeline.
	Timeline = core.Timeline
	// WorldConfig controls synthetic-world generation.
	WorldConfig = netsim.Config
	// ImpactSimilarity quantifies agent-vs-expert agreement.
	ImpactSimilarity = eval.ImpactSimilarity
	// VerdictAgreement quantifies forensic agreement.
	VerdictAgreement = eval.VerdictAgreement
	// CascadeReport bundles the expert cascade outputs.
	CascadeReport = expert.CascadeReport
	// ProblemSpec is QueryMind's decomposition artifact (reviewed in
	// expert mode at StageProblem).
	ProblemSpec = querymind.ProblemSpec
	// Design is WorkflowScout's artifact (StageDesign).
	Design = workflowscout.Design
	// Solution is SolutionWeaver's artifact (StageSolution).
	Solution = solutionweaver.Solution
)

// Pipeline stage names. The first four are passed to expert-mode
// review hooks; all five label PipelineError.Stage (curation failures
// are reported, not reviewed).
const (
	StageProblem  = core.StageProblem
	StageDesign   = core.StageDesign
	StageSolution = core.StageSolution
	StageResult   = core.StageResult
	StageCuration = core.StageCuration
)

// Job lifecycle states (see System.Submit).
const (
	JobQueued    = core.JobQueued
	JobRunning   = core.JobRunning
	JobDone      = core.JobDone
	JobCancelled = core.JobCancelled
)

// Async serving errors.
var (
	// ErrJobQueueFull is returned by Submit when the bounded job queue
	// has no room.
	ErrJobQueueFull = core.ErrJobQueueFull
	// ErrJobsStarted is returned by SetJobLimits after the first
	// Submit has started the worker pool.
	ErrJobsStarted = core.ErrJobsStarted
	// ErrJobsClosed is returned by Submit after System.Close.
	ErrJobsClosed = core.ErrJobsClosed
)

// AskExpert runs one call in expert mode: hook reviews the artifact
// leaving each of the four pipeline stages and may veto it. It is
// implemented as an AskObserver over stage-completion events.
func AskExpert(hook ReviewHook) AskOption { return core.AskExpert(hook) }

// AskObserver attaches an event observer to one call; observers see
// every event of the run and may veto the pipeline by returning an
// error.
func AskObserver(obs Observer) AskOption { return core.AskObserver(obs) }

// AskWithoutCuration disables post-run registry evolution for one call
// (curation is on by default).
func AskWithoutCuration() AskOption { return core.AskWithoutCuration() }

// AskNoCache bypasses plan and step memoization for one call: nothing
// is read from or written to the caches and every workflow step
// executes fresh.
func AskNoCache() AskOption { return core.AskNoCache() }

// AskTimeout bounds one call's wall-clock time.
func AskTimeout(d time.Duration) AskOption { return core.AskTimeout(d) }

// AskParallelism bounds concurrency: how many independent workflow
// steps an Ask executes at once, and for AskBatch the total budget —
// divided between concurrent queries and their steps (default
// GOMAXPROCS).
func AskParallelism(n int) AskOption { return core.AskParallelism(n) }

// options collects construction parameters.
type options struct {
	world       netsim.Config
	scenario    *core.ScenarioConfig
	registry    *registry.Registry
	fleet       int
	fleetRemote []string
}

// Option configures New.
type Option func(*options)

// WithSeed selects the world seed (full-size world).
func WithSeed(seed uint64) Option {
	return func(o *options) { o.world = netsim.DefaultConfig(seed) }
}

// WithSmallWorld uses the compact 12-country world (fast; used by the
// test suite).
func WithSmallWorld(seed uint64) Option {
	return func(o *options) { o.world = netsim.SmallConfig(seed) }
}

// WithWorldConfig supplies a fully custom world configuration.
func WithWorldConfig(cfg WorldConfig) Option {
	return func(o *options) { o.world = cfg }
}

// WithScenario injects a cable-failure measurement scenario (traceroute
// archive + BGP stream), enabling temporal and forensic analyses.
func WithScenario(sc ScenarioConfig) Option {
	return func(o *options) { o.scenario = &sc }
}

// WithRegistry overrides the builtin capability catalog (e.g. a
// Subset for controlled evaluations).
func WithRegistry(r *Registry) Option {
	return func(o *options) { o.registry = r }
}

// WithFleet shards the world over n workers (DIMES-style distributed
// execution): pure fan-out steps scatter across the shards owning
// their data and gather deterministically, so results are identical
// to unsharded execution. n < 1 disables the fleet (the default).
// System.Fleet() exposes the fleet (stats, Close); fleets are cheap
// (a few idle goroutines) and may live for the process.
func WithFleet(n int) Option {
	return func(o *options) { o.fleet = n }
}

// WithRemoteFleet shards the world over one worker per address and
// routes each shard's scatter-gather requests to the arachnet-worker
// process at that address (host:port) over HTTP — true multi-process
// distributed execution behind the same fleet seam. Workers must have
// been started with the same -world/-seed derivation and
// -shards=len(addrs); the registration handshake verifies it and
// rejects mismatched workers. Every shard keeps an in-process twin
// worker: a dead, slow or rejected remote fails over to it, so
// results are byte-identical to WithFleet(len(addrs)) regardless of
// which workers are reachable. Mutually exclusive with WithFleet.
func WithRemoteFleet(addrs ...string) Option {
	return func(o *options) { o.fleetRemote = addrs }
}

// New assembles a ready-to-ask ArachNet system. Defaults: full-size
// world with seed 42, builtin registry. Serving behavior — expert
// review, curation, timeouts, parallelism — is chosen per call with
// AskOptions, so one System handles heterogeneous requests.
func New(opts ...Option) (*System, error) {
	o := &options{world: netsim.DefaultConfig(42)}
	for _, opt := range opts {
		opt(o)
	}
	env, err := core.NewEnvironment(o.world)
	if err != nil {
		return nil, fmt.Errorf("arachnet: %w", err)
	}
	if o.scenario != nil {
		if err := env.InjectCableFailureScenario(*o.scenario); err != nil {
			return nil, fmt.Errorf("arachnet: %w", err)
		}
	}
	sys, err := core.NewSystem(env, o.registry)
	if err != nil {
		return nil, err
	}
	switch {
	case o.fleet > 0 && len(o.fleetRemote) > 0:
		return nil, fmt.Errorf("arachnet: WithFleet and WithRemoteFleet are mutually exclusive")
	case o.fleet > 0:
		f, err := fleet.New(env.World, fleet.Config{Workers: o.fleet})
		if err != nil {
			return nil, fmt.Errorf("arachnet: %w", err)
		}
		sys.SetFleet(f)
	case len(o.fleetRemote) > 0:
		f, err := fleetwire.NewFleet(env.World, o.fleetRemote, fleetwire.Config{})
		if err != nil {
			return nil, fmt.Errorf("arachnet: %w", err)
		}
		sys.SetFleet(f)
	}
	return sys, nil
}

// BuiltinRegistry returns the full hand-curated capability catalog.
func BuiltinRegistry() *Registry { return core.BuiltinRegistry() }

// CS1RegistryNames returns the restricted capability set of the paper's
// Case Study 1 ("core Nautilus functions only").
func CS1RegistryNames() []string { return core.CS1RegistryNames() }

// RenderImpact formats an impact report as a table with the top n rows.
func RenderImpact(rep *ImpactReport, n int) string { return core.RenderImpact(rep, n) }

// Regions recognized in queries.
const (
	Europe       = geo.Europe
	Asia         = geo.Asia
	NorthAmerica = geo.NorthAmerica
	SouthAmerica = geo.SouthAmerica
	Africa       = geo.Africa
	MiddleEast   = geo.MiddleEast
	Oceania      = geo.Oceania
)

// ExpertCableImpact runs the hand-coded specialist solution for cable
// impact analysis (the paper's Case Study 1 comparator).
func ExpertCableImpact(sys *System, cableName string) (*ImpactReport, error) {
	return expert.CableImpact(sys.Environment(), cableName)
}

// ExpertDisasterImpact runs the specialist multi-disaster workflow
// (Case Study 2 comparator).
func ExpertDisasterImpact(sys *System, failProb float64) (GlobalImpact, error) {
	return expert.DisasterImpact(sys.Environment(), failProb)
}

// ExpertCascade runs the specialist cascading-failure workflow (Case
// Study 3 comparator).
func ExpertCascade(sys *System, regionA, regionB geo.Region) (*CascadeReport, error) {
	return expert.Cascade(sys.Environment(), regionA, regionB)
}

// ExpertForensic runs the specialist root-cause investigation (Case
// Study 4 comparator).
func ExpertForensic(sys *System) (Verdict, error) {
	return expert.Forensic(sys.Environment())
}

// CompareImpact measures agent-vs-expert similarity of impact reports.
func CompareImpact(agent, exp *ImpactReport) ImpactSimilarity {
	return eval.CompareImpact(agent, exp)
}

// CompareVerdicts measures agent-vs-expert forensic agreement.
func CompareVerdicts(agent, exp Verdict) VerdictAgreement {
	return eval.CompareVerdicts(agent, exp)
}

// GlobalToReport adapts a combined multi-event impact for CompareImpact.
func GlobalToReport(g GlobalImpact) *ImpactReport { return eval.GlobalToReport(g) }

// FunctionalOverlap measures how much of an expert workflow's
// conceptual transformation set an agent workflow covers.
func FunctionalOverlap(rep *Report, sys *System, expertSteps []string) float64 {
	if rep.Design == nil || rep.Design.Chosen == nil {
		return 0
	}
	return eval.FunctionalOverlap(rep.Design.Chosen, sys.Registry(), expertSteps)
}

// Expert conceptual step sets for the four case studies.
func ExpertCableImpactSteps() []string    { return expert.CableImpactSteps() }
func ExpertDisasterImpactSteps() []string { return expert.DisasterImpactSteps() }
func ExpertCascadeSteps() []string        { return expert.CascadeSteps() }
func ExpertForensicSteps() []string       { return expert.ForensicSteps() }

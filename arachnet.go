// Package arachnet is the public API of ArachNet-Go, a reproduction of
// "Towards an Agentic Workflow for Internet Measurement Research"
// (HotNets 2025): four specialized agents — QueryMind, WorkflowScout,
// SolutionWeaver and RegistryCurator — that turn natural-language
// measurement questions into executable, quality-checked measurement
// workflows over a curated capability registry.
//
// The package also ships every substrate the workflows run on: a
// seeded synthetic Internet, Nautilus-style submarine-cable
// cartography, Xaminer-style resilience analysis, a policy-aware BGP
// simulator, a traceroute campaign engine, and cascade modeling.
//
// A System is built once and safely shared: Ask is context-first and
// concurrency-safe, AskBatch fans a query set out over a bounded
// worker pool, and per-call options (AskExpert, AskWithoutCuration,
// AskTimeout, AskParallelism) let one shared System serve
// heterogeneous requests.
//
// Quickstart:
//
//	sys, err := arachnet.New(arachnet.WithSeed(42))
//	if err != nil { ... }
//	report, err := sys.Ask(ctx, "Identify the impact at a country level due to SeaMeWe-5 cable failure")
//	if err != nil { ... }
//	fmt.Println(report.Solution.Code)   // the generated workflow program
//	fmt.Println(report.Result.Outputs)  // the executed analysis results
package arachnet

import (
	"fmt"
	"time"

	"arachnet/internal/agents/querymind"
	"arachnet/internal/agents/solutionweaver"
	"arachnet/internal/agents/workflowscout"
	"arachnet/internal/core"
	"arachnet/internal/eval"
	"arachnet/internal/expert"
	"arachnet/internal/geo"
	"arachnet/internal/netsim"
	"arachnet/internal/registry"
	"arachnet/internal/workflow"
	"arachnet/internal/xaminer"
)

// Re-exported core types. Aliases keep the public surface thin while
// the implementation lives in internal packages.
type (
	// System is the assembled four-agent pipeline.
	System = core.System
	// Report is the full record of one pipeline run.
	Report = core.Report
	// Environment is the simulated measurement environment.
	Environment = core.Environment
	// Registry is the capability catalog agents plan over.
	Registry = registry.Registry
	// Capability is one registry entry.
	Capability = registry.Capability
	// Port is one typed input/output of a capability.
	Port = registry.Port
	// Call is the invocation context passed to capability
	// implementations.
	Call = registry.Call
	// DataType names a value format flowing between capabilities.
	DataType = registry.DataType
	// AskOption configures one Ask or AskBatch call.
	AskOption = core.AskOption
	// ReviewHook inspects artifacts between stages in expert mode.
	ReviewHook = core.ReviewHook
	// PipelineError is the typed failure of one Ask: stage, failing
	// workflow step, and query. errors.Is/As see through it.
	PipelineError = core.PipelineError
	// StepError is the typed failure of one workflow step.
	StepError = workflow.StepError
	// ScenarioConfig controls forensic-scenario injection.
	ScenarioConfig = core.ScenarioConfig
	// ImpactReport is a per-country impact table.
	ImpactReport = xaminer.ImpactReport
	// GlobalImpact is a combined multi-event impact view.
	GlobalImpact = xaminer.GlobalImpact
	// Verdict is a forensic causation verdict.
	Verdict = core.Verdict
	// Timeline is a unified cross-layer cascade timeline.
	Timeline = core.Timeline
	// WorldConfig controls synthetic-world generation.
	WorldConfig = netsim.Config
	// ImpactSimilarity quantifies agent-vs-expert agreement.
	ImpactSimilarity = eval.ImpactSimilarity
	// VerdictAgreement quantifies forensic agreement.
	VerdictAgreement = eval.VerdictAgreement
	// CascadeReport bundles the expert cascade outputs.
	CascadeReport = expert.CascadeReport
	// ProblemSpec is QueryMind's decomposition artifact (reviewed in
	// expert mode at StageProblem).
	ProblemSpec = querymind.ProblemSpec
	// Design is WorkflowScout's artifact (StageDesign).
	Design = workflowscout.Design
	// Solution is SolutionWeaver's artifact (StageSolution).
	Solution = solutionweaver.Solution
)

// Pipeline stage names. The first four are passed to expert-mode
// review hooks; all five label PipelineError.Stage (curation failures
// are reported, not reviewed).
const (
	StageProblem  = core.StageProblem
	StageDesign   = core.StageDesign
	StageSolution = core.StageSolution
	StageResult   = core.StageResult
	StageCuration = core.StageCuration
)

// AskExpert runs one call in expert mode: hook reviews the artifact
// leaving each of the four pipeline stages and may veto it.
func AskExpert(hook ReviewHook) AskOption { return core.AskExpert(hook) }

// AskWithoutCuration disables post-run registry evolution for one call
// (curation is on by default).
func AskWithoutCuration() AskOption { return core.AskWithoutCuration() }

// AskTimeout bounds one call's wall-clock time.
func AskTimeout(d time.Duration) AskOption { return core.AskTimeout(d) }

// AskParallelism bounds concurrency: how many independent workflow
// steps an Ask executes at once, and for AskBatch the total budget —
// divided between concurrent queries and their steps (default
// GOMAXPROCS).
func AskParallelism(n int) AskOption { return core.AskParallelism(n) }

// options collects construction parameters.
type options struct {
	world    netsim.Config
	scenario *core.ScenarioConfig
	registry *registry.Registry
}

// Option configures New.
type Option func(*options)

// WithSeed selects the world seed (full-size world).
func WithSeed(seed uint64) Option {
	return func(o *options) { o.world = netsim.DefaultConfig(seed) }
}

// WithSmallWorld uses the compact 12-country world (fast; used by the
// test suite).
func WithSmallWorld(seed uint64) Option {
	return func(o *options) { o.world = netsim.SmallConfig(seed) }
}

// WithWorldConfig supplies a fully custom world configuration.
func WithWorldConfig(cfg WorldConfig) Option {
	return func(o *options) { o.world = cfg }
}

// WithScenario injects a cable-failure measurement scenario (traceroute
// archive + BGP stream), enabling temporal and forensic analyses.
func WithScenario(sc ScenarioConfig) Option {
	return func(o *options) { o.scenario = &sc }
}

// WithRegistry overrides the builtin capability catalog (e.g. a
// Subset for controlled evaluations).
func WithRegistry(r *Registry) Option {
	return func(o *options) { o.registry = r }
}

// New assembles a ready-to-ask ArachNet system. Defaults: full-size
// world with seed 42, builtin registry. Serving behavior — expert
// review, curation, timeouts, parallelism — is chosen per call with
// AskOptions, so one System handles heterogeneous requests.
func New(opts ...Option) (*System, error) {
	o := &options{world: netsim.DefaultConfig(42)}
	for _, opt := range opts {
		opt(o)
	}
	env, err := core.NewEnvironment(o.world)
	if err != nil {
		return nil, fmt.Errorf("arachnet: %w", err)
	}
	if o.scenario != nil {
		if err := env.InjectCableFailureScenario(*o.scenario); err != nil {
			return nil, fmt.Errorf("arachnet: %w", err)
		}
	}
	return core.NewSystem(env, o.registry)
}

// BuiltinRegistry returns the full hand-curated capability catalog.
func BuiltinRegistry() *Registry { return core.BuiltinRegistry() }

// CS1RegistryNames returns the restricted capability set of the paper's
// Case Study 1 ("core Nautilus functions only").
func CS1RegistryNames() []string { return core.CS1RegistryNames() }

// RenderImpact formats an impact report as a table with the top n rows.
func RenderImpact(rep *ImpactReport, n int) string { return core.RenderImpact(rep, n) }

// Regions recognized in queries.
const (
	Europe       = geo.Europe
	Asia         = geo.Asia
	NorthAmerica = geo.NorthAmerica
	SouthAmerica = geo.SouthAmerica
	Africa       = geo.Africa
	MiddleEast   = geo.MiddleEast
	Oceania      = geo.Oceania
)

// ExpertCableImpact runs the hand-coded specialist solution for cable
// impact analysis (the paper's Case Study 1 comparator).
func ExpertCableImpact(sys *System, cableName string) (*ImpactReport, error) {
	return expert.CableImpact(sys.Environment(), cableName)
}

// ExpertDisasterImpact runs the specialist multi-disaster workflow
// (Case Study 2 comparator).
func ExpertDisasterImpact(sys *System, failProb float64) (GlobalImpact, error) {
	return expert.DisasterImpact(sys.Environment(), failProb)
}

// ExpertCascade runs the specialist cascading-failure workflow (Case
// Study 3 comparator).
func ExpertCascade(sys *System, regionA, regionB geo.Region) (*CascadeReport, error) {
	return expert.Cascade(sys.Environment(), regionA, regionB)
}

// ExpertForensic runs the specialist root-cause investigation (Case
// Study 4 comparator).
func ExpertForensic(sys *System) (Verdict, error) {
	return expert.Forensic(sys.Environment())
}

// CompareImpact measures agent-vs-expert similarity of impact reports.
func CompareImpact(agent, exp *ImpactReport) ImpactSimilarity {
	return eval.CompareImpact(agent, exp)
}

// CompareVerdicts measures agent-vs-expert forensic agreement.
func CompareVerdicts(agent, exp Verdict) VerdictAgreement {
	return eval.CompareVerdicts(agent, exp)
}

// GlobalToReport adapts a combined multi-event impact for CompareImpact.
func GlobalToReport(g GlobalImpact) *ImpactReport { return eval.GlobalToReport(g) }

// FunctionalOverlap measures how much of an expert workflow's
// conceptual transformation set an agent workflow covers.
func FunctionalOverlap(rep *Report, sys *System, expertSteps []string) float64 {
	if rep.Design == nil || rep.Design.Chosen == nil {
		return 0
	}
	return eval.FunctionalOverlap(rep.Design.Chosen, sys.Registry(), expertSteps)
}

// Expert conceptual step sets for the four case studies.
func ExpertCableImpactSteps() []string    { return expert.CableImpactSteps() }
func ExpertDisasterImpactSteps() []string { return expert.DisasterImpactSteps() }
func ExpertCascadeSteps() []string        { return expert.CascadeSteps() }
func ExpertForensicSteps() []string       { return expert.ForensicSteps() }
